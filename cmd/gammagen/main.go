// Command gammagen generates Wisconsin benchmark relations and writes them
// as binary fragment files, one per simulated disk site, exactly as a Gamma
// load would decluster them. It prints per-fragment statistics so the
// declustering behaviour (hash balance, range boundaries, skew) is visible.
//
// Usage:
//
//	gammagen -n 100000 -strategy hash -attr unique1 -out /tmp/wisc
//	gammagen -n 100000 -skewed -strategy range -attr unique3 -out /tmp/skew
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gammajoin/internal/cost"
	"gammajoin/internal/gamma"
	"gammajoin/internal/tuple"
	"gammajoin/internal/wisconsin"
)

func main() {
	var (
		n      = flag.Int("n", 100000, "relation cardinality")
		seed   = flag.Uint64("seed", 1989, "generator seed")
		skewed = flag.Bool("skewed", false, "draw the unique3/normal attribute from the paper's normal distribution")
		strat  = flag.String("strategy", "hash", "declustering strategy: roundrobin, hash, or range")
		attr   = flag.String("attr", "unique1", "partitioning attribute")
		disks  = flag.Int("disks", 8, "number of disk sites")
		out    = flag.String("out", "", "output directory (omit for a dry run with stats only)")
		name   = flag.String("name", "wisconsin", "relation name")
	)
	flag.Parse()

	var strategy gamma.Strategy
	switch *strat {
	case "roundrobin":
		strategy = gamma.RoundRobin
	case "hash":
		strategy = gamma.HashPart
	case "range":
		strategy = gamma.RangeUniform
	default:
		fmt.Fprintf(os.Stderr, "gammagen: unknown strategy %q\n", *strat)
		os.Exit(2)
	}
	attrIdx, err := tuple.AttrIndex(*attr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gammagen:", err)
		os.Exit(2)
	}

	var tuples []tuple.Tuple
	if *skewed {
		tuples = wisconsin.GenerateSkewed(*n, *seed)
	} else {
		tuples = wisconsin.Generate(*n, *seed)
	}

	c := gamma.NewLocal(*disks, cost.Default())
	rel, err := gamma.Load(c, *name, tuples, strategy, attrIdx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gammagen:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: %d tuples (%d bytes), %s-declustered on %s across %d disks\n",
		*name, rel.N, rel.Bytes(), strategy, *attr, *disks)
	for _, site := range rel.FragmentSites() {
		f := rel.Fragments[site]
		fmt.Printf("  site %d: %6d tuples, %4d pages", site, f.Len(), f.Pages())
		if *out != "" {
			path := filepath.Join(*out, fmt.Sprintf("%s.f%d.bin", *name, site))
			nBytes, err := writeFragment(path, f)
			if err != nil {
				fmt.Fprintln(os.Stderr, "\ngammagen:", err)
				os.Exit(1)
			}
			fmt.Printf(" -> %s (%d bytes)", path, nBytes)
		}
		fmt.Println()
	}
}

// writeFragment serializes a fragment's tuples in the 208-byte wire format.
func writeFragment(path string, f interface {
	Scan(a *cost.Acct, fn func(t *tuple.Tuple) bool)
}) (int64, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, err
	}
	file, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer file.Close()
	w := bufio.NewWriter(file)
	var a cost.Acct
	var total int64
	var buf []byte
	f.Scan(&a, func(t *tuple.Tuple) bool {
		buf = t.Marshal(buf[:0])
		if _, err := w.Write(buf); err != nil {
			return false
		}
		total += int64(len(buf))
		return true
	})
	if err := w.Flush(); err != nil {
		return total, err
	}
	return total, nil
}
