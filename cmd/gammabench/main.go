// Command gammabench regenerates the tables and figures of Schneider &
// DeWitt (SIGMOD 1989) on the simulated Gamma machine.
//
// Usage:
//
//	gammabench -list
//	gammabench -exp all                 # every experiment, paper order
//	gammabench -exp fig5,fig7,table3    # a selection
//	gammabench -exp fig5 -outer 20000 -inner 2000   # scaled down
//	gammabench -alg hybrid -trace out.json -metrics out.tsv   # one traced join
//	gammabench -alg hybrid -prof hybrid.prof.txt              # blame + critical path
//	gammabench -exp fig5 -trace-dir traces/   # export every run's timeline
//	gammabench -exp fig5 -prof-dir profs/     # profile every run (gammaprof)
//
// Response times are simulated seconds from the Gamma-calibrated cost
// model; series shapes — orderings, crossovers, steps — reproduce the
// paper's (see EXPERIMENTS.md for the point-by-point comparison).
//
// -trace writes Chrome trace_event JSON over simulated time — load it at
// https://ui.perfetto.dev; -metrics writes the per-phase metric samples as
// TSV; -prof/-prof-dir write gammaprof blame/critical-path reports whose
// buckets sum bit-exactly to the reported response time
// (docs/OBSERVABILITY.md describes every format).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gammajoin/internal/core"
	"gammajoin/internal/cost"
	"gammajoin/internal/experiments"
	"gammajoin/internal/fault"
	"gammajoin/internal/profile"
	"gammajoin/internal/sched"
	"gammajoin/internal/walltime"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		exp     = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		outer   = flag.Int("outer", 0, "override outer relation cardinality (default 100000)")
		inner   = flag.Int("inner", 0, "override inner relation cardinality (default 10000)")
		disks   = flag.Int("disks", 0, "override number of disk sites (default 8)")
		remote  = flag.Int("remote", 0, "override number of diskless join sites (default 8)")
		seed    = flag.Uint64("seed", 0, "override workload seed (default 1989)")
		timings = flag.Bool("t", false, "print wall-clock time per experiment")
		plot    = flag.Bool("plot", false, "also render figure results as ASCII charts")

		alg        = flag.String("alg", "", "run one joinABprime join with this algorithm (sort-merge|simple|grace|hybrid|hybrid-dyn) instead of -exp")
		ratio      = flag.Float64("ratio", 0.5, "memory ratio for the -alg run")
		estError   = flag.Float64("est-error", 0, "corrupt the optimizer's inner-size estimate by this factor (0 or 1 = exact; see docs/SCHEDULER.md, Dynamic Hybrid)")
		traceOut   = flag.String("trace", "", "with -alg: write the run's Chrome trace_event JSON to this file")
		metricsOut = flag.String("metrics", "", "with -alg or -mpl: write the run's metrics TSV to this file")
		traceDir   = flag.String("trace-dir", "", "export every experiment run's trace JSON + metrics/spans TSV into this directory")
		profOut    = flag.String("prof", "", "with -alg: write the run's gammaprof report to this file (text; *.tsv gets the machine-readable profile)")
		profDir    = flag.String("prof-dir", "", "write every run's gammaprof profile (<slug>.prof.txt + .prof.tsv; with -mpl, q<id>.prof.*) into this directory")

		faultSeed     = flag.Uint64("fault-seed", 0, "fault-schedule seed (enables fault injection with any -fault-* rate)")
		faultDisk     = flag.Float64("fault-disk", 0, "transient disk read-error probability per page read")
		faultNet      = flag.Float64("fault-net", 0, "network packet drop probability per remote packet")
		faultDup      = flag.Float64("fault-dup", 0, "network packet duplication probability per remote packet")
		faultMem      = flag.Float64("fault-mem", 0, "per-phase probability of a memory-budget change at the join sites")
		faultMemAlias = flag.Float64("fault-mem-pressure", 0, "alias for -fault-mem")
		faultSwing    = flag.Float64("fault-swing", 0, "per-batch probability of a budget swing (downward revoke or upward re-grant) during a dynamic-Hybrid build")
		faultCrash    = flag.Float64("fault-crash", 0, "per-phase per-site crash probability (recovered by failover or query restart)")

		mirror        = flag.Bool("mirror", false, "chained-declustered mirrors: back each disk site's fragments up on its ring neighbor so a single crash fails over instead of restarting")
		detectTimeout = flag.Float64("detect-timeout", 0, "failure-detection heartbeat period in simulated ms (0 keeps the cost model's default period and miss count)")

		mpl         = flag.Int("mpl", 0, "run a multi-query workload at this multiprogramming level instead of -exp/-alg (see docs/SCHEDULER.md)")
		policy      = flag.String("policy", "fifo", "with -mpl: admission policy (fifo|fair|shrink|revoke)")
		queries     = flag.Int("queries", 8, "with -mpl: number of workload queries")
		arrivalSeed = flag.Uint64("arrival-seed", 0, "with -mpl: arrival-schedule seed (default: the workload seed)")
		gapMs       = flag.Float64("gap", 2000, "with -mpl: mean inter-arrival gap in simulated ms")
		poolMB      = flag.Float64("pool", 0, "with -mpl: join-memory pool in MB (default: 2x the inner relation)")

		deadlineMs  = flag.Float64("deadline", 0, "with -mpl: per-query relative deadline in simulated ms (0 = none; see docs/SCHEDULER.md, Overload and shedding)")
		shedPolicy  = flag.String("shed-policy", "none", "with -mpl: load-shedding policy (none|reject|largest|brownout)")
		queueCap    = flag.Int("queue-cap", 0, "with -mpl: bound the admission queue at this many waiters (0 = unbounded; needs -shed-policy)")
		offeredLoad = flag.Float64("offered-load", 0, "with -mpl: divide the mean arrival gap by this load factor (2 = twice the arrival rate)")
		shedSeed    = flag.Uint64("shed-seed", 0, "with -mpl: shed-victim tie-break salt")
		burst       = flag.Float64("burst", 0, "with -mpl: per-arrival probability of a zero-gap arrival burst")
		burstLen    = flag.Int("burst-len", 0, "with -mpl: arrivals per burst (default 4)")

		retryBudget  = flag.Int64("retry-budget", 0, "per-query fault-retry budget: disk retries and crash restarts consume it; exhausted queries are shed (0 = unlimited)")
		retryBackoff = flag.Float64("retry-backoff", 0, "base disk-retry backoff in simulated ms, doubled per retry and charged to the paying span")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Catalog {
			fmt.Println(e.Name)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *outer > 0 {
		cfg.OuterN = *outer
	}
	if *inner > 0 {
		cfg.InnerN = *inner
	}
	if *disks > 0 {
		cfg.Disks = *disks
	}
	if *remote > 0 {
		cfg.Remote = *remote
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if cfg.InnerN > cfg.OuterN {
		fmt.Fprintln(os.Stderr, "gammabench: -inner must not exceed -outer")
		os.Exit(2)
	}
	if *faultMemAlias > *faultMem {
		*faultMem = *faultMemAlias
	}
	if *faultDisk > 0 || *faultNet > 0 || *faultDup > 0 || *faultMem > 0 || *faultSwing > 0 || *faultCrash > 0 ||
		*retryBudget > 0 || *retryBackoff > 0 {
		cfg.Faults = &fault.Spec{
			Seed:            *faultSeed,
			DiskReadRate:    *faultDisk,
			NetDropRate:     *faultNet,
			NetDupRate:      *faultDup,
			MemPressureRate: *faultMem,
			BudgetSwingRate: *faultSwing,
			CrashRate:       *faultCrash,
			RetryBudget:     *retryBudget,
			RetryBackoffNs:  int64(*retryBackoff * 1e6),
		}
	}
	cfg.EstError = *estError

	cfg.Mirror = *mirror
	if *detectTimeout > 0 {
		// A -detect-timeout of T declares a site dead T simulated ms after
		// its last heartbeat: one heartbeat period of T ms, one missed beat.
		p := cost.DefaultParams()
		p.HeartbeatMs = cost.Ms(*detectTimeout)
		p.HeartbeatMisses = 1
		cfg.Model = cost.NewModel(p)
	}

	cfg.TraceDir = *traceDir
	cfg.ProfDir = *profDir

	h := experiments.NewHarness(cfg)
	fmt.Printf("joinABprime: %d-tuple outer ⋈ %d-tuple inner, %d disk sites",
		cfg.OuterN, cfg.InnerN, cfg.Disks)
	if cfg.Remote > 0 {
		fmt.Printf(" (+%d diskless for remote runs)", cfg.Remote)
	}
	fmt.Printf(", seed %d\n", cfg.Seed)
	if f := cfg.Faults; f != nil {
		fmt.Printf("faults: seed %d disk %.3g drop %.3g dup %.3g mem %.3g swing %.3g crash %.3g\n",
			f.Seed, f.DiskReadRate, f.NetDropRate, f.NetDupRate, f.MemPressureRate, f.BudgetSwingRate, f.CrashRate)
	}
	if cfg.EstError > 0 && cfg.EstError != 1 {
		fmt.Printf("optimizer: inner-size estimate corrupted by factor %.4g\n", cfg.EstError)
	}
	if cfg.Mirror {
		fmt.Println("mirrors: chained declustering on (each disk site backed up by its ring neighbor)")
	}
	fmt.Println()

	if *mpl > 0 {
		ov := overloadFlags{
			deadlineMs:  *deadlineMs,
			shedPolicy:  *shedPolicy,
			queueCap:    *queueCap,
			offeredLoad: *offeredLoad,
			shedSeed:    *shedSeed,
			burst:       *burst,
			burstLen:    *burstLen,
			metricsOut:  *metricsOut,
		}
		if err := runWorkload(h, *mpl, *policy, *queries, *arrivalSeed, *gapMs, *poolMB, *traceDir, *profDir, ov); err != nil {
			fmt.Fprintln(os.Stderr, "gammabench:", err)
			os.Exit(1)
		}
		return
	}

	if *alg != "" {
		if err := runSingle(h, *alg, *ratio, *traceOut, *metricsOut, *profOut); err != nil {
			fmt.Fprintln(os.Stderr, "gammabench:", err)
			os.Exit(1)
		}
		return
	}

	var entries []experiments.Entry
	if *exp == "all" {
		entries = experiments.Catalog
	} else {
		for _, name := range strings.Split(*exp, ",") {
			e, err := experiments.Find(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "gammabench:", err)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	for _, e := range entries {
		start := walltime.Now()
		results, err := e.Run(h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gammabench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Println(r.Format())
			if *plot {
				if chart := r.Plot(64, 16); chart != "" {
					fmt.Println(chart)
				}
			}
		}
		if *timings {
			fmt.Printf("[%s took %v]\n\n", e.Name, walltime.Since(start).Round(time.Millisecond))
		}
	}
	printRecovery(h)
}

// printRecovery summarizes the recovery ladder's work across every faulted
// run: one line, only when fault injection was on.
func printRecovery(h *experiments.Harness) {
	if h.Config().Faults == nil {
		return
	}
	r := h.Recovery()
	fmt.Printf("recovery: %d runs, %d restarts, %d failed over, %d phases redone, %.2fs wasted, %.2fs detecting, %d mirror page reads\n",
		r.Runs, r.Restarts, r.FailedOver, r.PhasesRedone,
		r.WastedWork.Seconds(), r.DetectionDelay.Seconds(), r.MirrorReads)
}

// parseAlg maps a flag value to an algorithm.
func parseAlg(name string) (core.Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "sort-merge", "sortmerge":
		return core.SortMerge, nil
	case "simple":
		return core.Simple, nil
	case "grace":
		return core.Grace, nil
	case "hybrid":
		return core.Hybrid, nil
	case "hybrid-dyn", "hybriddyn", "dynamic":
		return core.HybridDyn, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want sort-merge, simple, grace, hybrid, or hybrid-dyn)", name)
	}
}

// overloadFlags bundles the -mpl overload-control flags.
type overloadFlags struct {
	deadlineMs  float64
	shedPolicy  string
	queueCap    int
	offeredLoad float64
	shedSeed    uint64
	burst       float64
	burstLen    int
	metricsOut  string
}

// runWorkload runs a multi-query workload through the admission engine and
// prints its deterministic report. With -trace-dir, every query's timeline
// is exported as q<id>.trace.json / q<id>.spans.tsv — the per-query process
// tracks merge in Perfetto into one multi-query timeline. With -metrics, the
// engine's admission metrics (sched.shed, sched.timeout, sched.queue.depth)
// are exported in the same TSV schema as the per-query recovery metrics.
func runWorkload(h *experiments.Harness, mpl int, policyName string, queries int, arrivalSeed uint64, gapMs, poolMB float64, traceDir, profDir string, ov overloadFlags) error {
	pol, err := sched.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	shed, err := sched.ParseShedPolicy(ov.shedPolicy)
	if err != nil {
		return err
	}
	gap := gapMs * 1e6
	if ov.offeredLoad > 0 {
		gap /= ov.offeredLoad
	}
	res, err := h.Workload(experiments.WorkloadConfig{
		Queries:     queries,
		ArrivalSeed: arrivalSeed,
		MeanGap:     time.Duration(gap),
		Policy:      pol,
		MPL:         mpl,
		PoolBytes:   int64(poolMB * (1 << 20)),
		// Per-query trace exports need each query's own recorder, so the
		// per-(shape,grant) report cache must stay off here.
		CacheReports: false,
		Deadline:     time.Duration(ov.deadlineMs * 1e6),
		Shed:         shed,
		QueueCap:     ov.queueCap,
		ShedSeed:     ov.shedSeed,
		BurstRate:    ov.burst,
		BurstLen:     ov.burstLen,
	})
	if err != nil {
		return err
	}
	if err := res.WriteText(os.Stdout); err != nil {
		return err
	}
	if ov.metricsOut != "" {
		f, err := os.Create(ov.metricsOut)
		if err != nil {
			return err
		}
		if err := res.Metrics.WriteTSV(f); err != nil {
			f.Close()
			return fmt.Errorf("writing workload metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "workload metrics written to %s\n", ov.metricsOut)
	}
	writeAll := func(outs []struct {
		path string
		emit func(w io.Writer) error
	}) error {
		for _, out := range outs {
			f, err := os.Create(out.path)
			if err != nil {
				return err
			}
			if err := out.emit(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return err
		}
		for _, q := range res.Queries {
			if q.Report == nil {
				continue // shed before admission: no execution, no timeline
			}
			rec := q.Report.Trace
			if err := writeAll([]struct {
				path string
				emit func(w io.Writer) error
			}{
				{filepath.Join(traceDir, fmt.Sprintf("q%d.trace.json", q.ID)), rec.WriteChrome},
				{filepath.Join(traceDir, fmt.Sprintf("q%d.spans.tsv", q.ID)), rec.WriteSpansTSV},
			}); err != nil {
				return err
			}
		}
		// Status goes to stderr: stdout is the deterministic report the `make
		// mpl` gate compares byte-for-byte, and the directory path varies.
		fmt.Fprintf(os.Stderr, "per-query traces written to %s\n", traceDir)
	}
	if profDir != "" {
		if err := os.MkdirAll(profDir, 0o755); err != nil {
			return err
		}
		for i := range res.Queries {
			q := &res.Queries[i]
			p, err := profile.FromQueryResult(q, h.Config().Model)
			if err != nil {
				return fmt.Errorf("profiling q%d: %w", q.ID, err)
			}
			if err := writeAll([]struct {
				path string
				emit func(w io.Writer) error
			}{
				{filepath.Join(profDir, fmt.Sprintf("q%d.prof.txt", q.ID)), p.WriteText},
				{filepath.Join(profDir, fmt.Sprintf("q%d.prof.tsv", q.ID)), p.WriteTSV},
			}); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "per-query profiles written to %s\n", profDir)
	}
	return nil
}

// runSingle executes one joinABprime join on the local configuration and
// optionally exports its timeline, metric samples, and gammaprof profile.
func runSingle(h *experiments.Harness, algName string, ratio float64, traceOut, metricsOut, profOut string) error {
	a, err := parseAlg(algName)
	if err != nil {
		return err
	}
	rep, err := h.Run(experiments.RunKey{Alg: a, HPJA: true, Ratio: ratio})
	if err != nil {
		return err
	}
	fmt.Printf("%s (memory ratio %.4g): %.2f simulated seconds, %d phases, %d buckets\n",
		a, ratio, rep.Response.Seconds(), len(rep.Phases), rep.Buckets)
	fmt.Printf("disk-site cpu utilization %.1f%%, bottleneck busy %.2fs, forming local fraction %.2f\n",
		100*rep.UtilDisk, rep.BottleneckBusy.Seconds(), rep.FormingLocalFrac())
	if rep.FailedOver > 0 {
		fmt.Printf("failed over %d crash(es) at sites %v: %d phases redone, %d mirror page reads, %.2fs wasted, %.2fs detecting\n",
			rep.FailedOver, rep.DeadSites, rep.PhasesRedone, rep.MirrorReads,
			rep.WastedWork.Seconds(), rep.DetectionDelay.Seconds())
	}
	if rep.Restarts > 0 {
		fmt.Printf("recovered from %d crash(es) at sites %v, wasting %.2fs\n",
			rep.Restarts, rep.DeadSites, rep.WastedWork.Seconds())
	}
	write := func(path, kind string, emit func(w io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", kind, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s written to %s\n", kind, path)
		return nil
	}
	if traceOut != "" {
		if err := write(traceOut, "trace", rep.Trace.WriteChrome); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		if err := write(metricsOut, "metrics", rep.Trace.WriteMetricsTSV); err != nil {
			return err
		}
	}
	if profOut != "" {
		p, err := profile.FromReport(rep, h.Config().Model)
		if err != nil {
			return err
		}
		emit := p.WriteText
		if strings.HasSuffix(profOut, ".tsv") {
			emit = p.WriteTSV
		}
		if err := write(profOut, "profile", emit); err != nil {
			return err
		}
	}
	return nil
}
