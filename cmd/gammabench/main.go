// Command gammabench regenerates the tables and figures of Schneider &
// DeWitt (SIGMOD 1989) on the simulated Gamma machine.
//
// Usage:
//
//	gammabench -list
//	gammabench -exp all                 # every experiment, paper order
//	gammabench -exp fig5,fig7,table3    # a selection
//	gammabench -exp fig5 -outer 20000 -inner 2000   # scaled down
//
// Response times are simulated seconds from the Gamma-calibrated cost
// model; series shapes — orderings, crossovers, steps — reproduce the
// paper's (see EXPERIMENTS.md for the point-by-point comparison).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gammajoin/internal/experiments"
	"gammajoin/internal/fault"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		exp     = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		outer   = flag.Int("outer", 0, "override outer relation cardinality (default 100000)")
		inner   = flag.Int("inner", 0, "override inner relation cardinality (default 10000)")
		disks   = flag.Int("disks", 0, "override number of disk sites (default 8)")
		remote  = flag.Int("remote", 0, "override number of diskless join sites (default 8)")
		seed    = flag.Uint64("seed", 0, "override workload seed (default 1989)")
		timings = flag.Bool("t", false, "print wall-clock time per experiment")
		plot    = flag.Bool("plot", false, "also render figure results as ASCII charts")

		faultSeed  = flag.Uint64("fault-seed", 0, "fault-schedule seed (enables fault injection with any -fault-* rate)")
		faultDisk  = flag.Float64("fault-disk", 0, "transient disk read-error probability per page read")
		faultNet   = flag.Float64("fault-net", 0, "network packet drop probability per remote packet")
		faultDup   = flag.Float64("fault-dup", 0, "network packet duplication probability per remote packet")
		faultMem   = flag.Float64("fault-mem", 0, "per-phase probability of a memory-budget change at the join sites")
		faultCrash = flag.Float64("fault-crash", 0, "per-phase per-site crash probability (recovered by query restart)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Catalog {
			fmt.Println(e.Name)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *outer > 0 {
		cfg.OuterN = *outer
	}
	if *inner > 0 {
		cfg.InnerN = *inner
	}
	if *disks > 0 {
		cfg.Disks = *disks
	}
	if *remote > 0 {
		cfg.Remote = *remote
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if cfg.InnerN > cfg.OuterN {
		fmt.Fprintln(os.Stderr, "gammabench: -inner must not exceed -outer")
		os.Exit(2)
	}
	if *faultDisk > 0 || *faultNet > 0 || *faultDup > 0 || *faultMem > 0 || *faultCrash > 0 {
		cfg.Faults = &fault.Spec{
			Seed:            *faultSeed,
			DiskReadRate:    *faultDisk,
			NetDropRate:     *faultNet,
			NetDupRate:      *faultDup,
			MemPressureRate: *faultMem,
			CrashRate:       *faultCrash,
		}
	}

	h := experiments.NewHarness(cfg)
	fmt.Printf("joinABprime: %d-tuple outer ⋈ %d-tuple inner, %d disk sites",
		cfg.OuterN, cfg.InnerN, cfg.Disks)
	if cfg.Remote > 0 {
		fmt.Printf(" (+%d diskless for remote runs)", cfg.Remote)
	}
	fmt.Printf(", seed %d\n", cfg.Seed)
	if f := cfg.Faults; f != nil {
		fmt.Printf("faults: seed %d disk %.3g drop %.3g dup %.3g mem %.3g crash %.3g\n",
			f.Seed, f.DiskReadRate, f.NetDropRate, f.NetDupRate, f.MemPressureRate, f.CrashRate)
	}
	fmt.Println()

	var entries []experiments.Entry
	if *exp == "all" {
		entries = experiments.Catalog
	} else {
		for _, name := range strings.Split(*exp, ",") {
			e, err := experiments.Find(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "gammabench:", err)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	for _, e := range entries {
		start := time.Now()
		results, err := e.Run(h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gammabench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Println(r.Format())
			if *plot {
				if chart := r.Plot(64, 16); chart != "" {
					fmt.Println(chart)
				}
			}
		}
		if *timings {
			fmt.Printf("[%s took %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
		}
	}
}
