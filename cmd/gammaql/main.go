// Command gammaql is a tiny interactive shell for the simulated Gamma
// machine: generate Wisconsin benchmark relations, decluster them, and run
// the four parallel join algorithms with the paper's knobs.
//
//	$ gammaql
//	gamma> create A 100000 partition by hash unique1
//	gamma> create Bprime bprime A 10000 partition by hash unique1
//	gamma> join Bprime A on unique1 using hybrid mem 0.5 filter
//	gamma> plan Bprime A on unique1 mem 0.5
//	gamma> select A where unique1 < 1000 store
//	gamma> agg avg unique2 by ten on A
//	gamma> update A set twentyPercent 42 where unique1 < 100
//
// Type "help" for the full command language. Commands can also be piped on
// stdin for scripted use.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"gammajoin/internal/cost"
	"gammajoin/internal/gamma"
	"gammajoin/internal/gammaql"
)

func main() {
	var (
		disks    = flag.Int("disks", 8, "processors with disks")
		diskless = flag.Int("diskless", 0, "diskless join processors (remote configuration)")
	)
	flag.Parse()

	var c *gamma.Cluster
	if *diskless > 0 {
		c = gamma.NewRemote(*disks, *diskless, cost.Default())
	} else {
		c = gamma.NewLocal(*disks, cost.Default())
	}
	fmt.Printf("gammaql: %d disk sites", *disks)
	if *diskless > 0 {
		fmt.Printf(" + %d diskless join sites", *diskless)
	}
	fmt.Println(" (type 'help' for commands)")

	s := gammaql.NewSession(c, os.Stdout)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("gamma> ")
	for in.Scan() {
		err := s.Exec(in.Text())
		if err == io.EOF {
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		fmt.Print("gamma> ")
	}
}
