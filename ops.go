package gammajoin

import (
	"fmt"

	"gammajoin/internal/core"
	"gammajoin/internal/gamma"
	"gammajoin/internal/optimizer"
	"gammajoin/internal/pred"
	"gammajoin/internal/tuple"
)

// This file exposes Gamma's non-join operators (selection/projection and
// aggregation) and the optimizer's automatic join planning.

// Predicate is a compiled selection predicate.
type Predicate = pred.Pred

// Where builds a single-comparison predicate, e.g. Where("unique1", "<", 100).
func Where(attr, op string, value int32) (Predicate, error) {
	idx, err := tuple.AttrIndex(attr)
	if err != nil {
		return nil, err
	}
	var o pred.Op
	switch op {
	case "=", "==":
		o = pred.EQ
	case "<>", "!=":
		o = pred.NE
	case "<":
		o = pred.LT
	case "<=":
		o = pred.LE
	case ">":
		o = pred.GT
	case ">=":
		o = pred.GE
	default:
		return nil, fmt.Errorf("gammajoin: unknown comparison operator %q", op)
	}
	return pred.Cmp{Attr: idx, Op: o, Val: value}, nil
}

// All combines predicates conjunctively.
func All(ps ...Predicate) Predicate { return pred.And(ps) }

// Any combines predicates disjunctively.
func Any(ps ...Predicate) Predicate { return pred.Or(ps) }

// OpReport describes a non-join operator execution.
type OpReport = core.OpReport

// SelectOptions configure Machine.Select.
type SelectOptions struct {
	// Where filters tuples (nil selects everything).
	Where Predicate
	// Project names the integer attributes to retain (nil keeps all).
	Project []string
	// Store materializes the result round-robin across the disks.
	Store bool
	// Collect returns the qualifying tuples.
	Collect bool
}

// Select runs a parallel selection (with optional projection) over a
// relation. Selections execute only on the processors with disks, as in
// Gamma.
func (m *Machine) Select(rel *Relation, opts SelectOptions) (*OpReport, []Tuple, error) {
	var project []int
	for _, name := range opts.Project {
		idx, err := tuple.AttrIndex(name)
		if err != nil {
			return nil, nil, err
		}
		project = append(project, idx)
	}
	return core.RunSelect(m.c, core.SelectSpec{
		Rel:         rel,
		Pred:        opts.Where,
		Project:     project,
		StoreResult: opts.Store,
		Collect:     opts.Collect,
	})
}

// AggGroup is one aggregation result group.
type AggGroup = core.AggGroup

// Aggregate runs a parallel aggregate: fn is one of "count", "sum", "min",
// "max", "avg"; groupBy may be empty for a scalar aggregate. The final
// aggregation runs on the diskless processors when the machine has them.
func (m *Machine) Aggregate(rel *Relation, fn, attr, groupBy string, where Predicate) (*OpReport, []AggGroup, error) {
	var f core.AggFn
	switch fn {
	case "count":
		f = core.Count
	case "sum":
		f = core.Sum
	case "min":
		f = core.Min
	case "max":
		f = core.Max
	case "avg":
		f = core.Avg
	default:
		return nil, nil, fmt.Errorf("gammajoin: unknown aggregate %q", fn)
	}
	aggIdx, err := tuple.AttrIndex(attr)
	if err != nil {
		return nil, nil, err
	}
	groupIdx := -1
	if groupBy != "" {
		if groupIdx, err = tuple.AttrIndex(groupBy); err != nil {
			return nil, nil, err
		}
	}
	return core.RunAggregate(m.c, core.AggSpec{
		Rel:       rel,
		GroupAttr: groupIdx,
		AggAttr:   aggIdx,
		Fn:        f,
		Pred:      where,
	})
}

// JoinPlan is the optimizer's decision for a join: which algorithm, where
// to run it, how many buckets, and the statistics behind the choice.
type JoinPlan = optimizer.Plan

// PlanJoin asks the optimizer (implementing the paper's Section 5
// conclusions) how to execute inner ⋈ outer with memBytes of aggregate join
// memory: Hybrid for uniform data, sort-merge when the inner is skewed and
// memory is limited, diskless placement only for non-HPJA joins with
// sufficient memory, and bit filters always.
func (m *Machine) PlanJoin(inner, outer *Relation, innerAttr, outerAttr string, memBytes int64) (JoinPlan, error) {
	ri, err := tuple.AttrIndex(innerAttr)
	if err != nil {
		return JoinPlan{}, err
	}
	si, err := tuple.AttrIndex(outerAttr)
	if err != nil {
		return JoinPlan{}, err
	}
	return optimizer.PlanJoin(m.c, inner, outer, ri, si, memBytes), nil
}

// AutoJoin plans and executes a join in one call.
func (m *Machine) AutoJoin(inner, outer *Relation, innerAttr, outerAttr string, memBytes int64) (JoinPlan, *Report, error) {
	plan, err := m.PlanJoin(inner, outer, innerAttr, outerAttr, memBytes)
	if err != nil {
		return plan, nil, err
	}
	ri, _ := tuple.AttrIndex(innerAttr)
	si, _ := tuple.AttrIndex(outerAttr)
	rep, err := core.Run(m.c, plan.Spec(inner, outer, ri, si))
	return plan, rep, err
}

// Index is a declustered B+-tree index (one tree per fragment site).
type Index = gamma.Index

// BuildIndex constructs a B+-tree index on the named integer attribute at
// every fragment site (a load-time activity, not charged to queries).
func (m *Machine) BuildIndex(rel *Relation, attr string) (*Index, error) {
	idx, err := tuple.AttrIndex(attr)
	if err != nil {
		return nil, err
	}
	return gamma.BuildIndex(m.c, rel, idx)
}

// IndexSelect runs a selection through an index: each site descends its
// B+-tree and fetches only qualifying pages. The predicate must be a
// conjunction of comparisons on the indexed attribute.
func (m *Machine) IndexSelect(ix *Index, where Predicate, collect bool) (*OpReport, []Tuple, error) {
	return core.RunIndexSelect(m.c, ix, where, collect)
}

// Update runs a parallel in-place update: SET attr = value WHERE where.
// Updating the partitioning attribute of a hash- or range-declustered
// relation is rejected (it would invalidate tuple placement).
func (m *Machine) Update(rel *Relation, where Predicate, attr string, value int32) (*OpReport, error) {
	idx, err := tuple.AttrIndex(attr)
	if err != nil {
		return nil, err
	}
	return core.RunUpdate(m.c, core.UpdateSpec{
		Rel:     rel,
		Pred:    where,
		SetAttr: idx,
		SetVal:  value,
	})
}
