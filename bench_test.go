package gammajoin

// Benchmarks regenerating every table and figure of the paper, plus
// per-algorithm engine benchmarks and ablations of the design choices
// called out in DESIGN.md.
//
// Figure/table benchmarks run a scaled joinABprime (10k x 1k tuples) so the
// whole suite completes quickly; `go run ./cmd/gammabench` regenerates the
// full-size (100k x 10k) results. Each benchmark reports the simulated
// response time of its headline data point as the "sim-sec" metric, so
// `go test -bench .` doubles as a compact reproduction table.

import (
	"strconv"
	"testing"

	"gammajoin/internal/core"
	"gammajoin/internal/cost"
	"gammajoin/internal/experiments"
	"gammajoin/internal/fault"
	"gammajoin/internal/gamma"
	"gammajoin/internal/pred"
	"gammajoin/internal/tuple"
	"gammajoin/internal/wisconsin"
)

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.OuterN = 10000
	cfg.InnerN = 1000
	return cfg
}

// benchExperiment regenerates one catalog experiment per iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := experiments.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchConfig())
		results, err := e.Run(h)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Report the first data point of the first series (or 0 for
			// pure tables) as the simulated-seconds metric.
			if len(results) > 0 && len(results[0].Series) > 0 {
				b.ReportMetric(results[0].Series[0].Points[0].Y, "sim-sec")
			}
		}
	}
}

func BenchmarkFigure5(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFigures10to13(b *testing.B) { benchExperiment(b, "fig10-13") }
func BenchmarkFigure14(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFigure15(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFigure16(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkTable1(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)        { benchExperiment(b, "table4") }
func BenchmarkTable3Extras(b *testing.B)  { benchExperiment(b, "table3x") }
func BenchmarkAppendixA(b *testing.B)     { benchExperiment(b, "appendixA") }

// benchFixture loads one scaled joinABprime workload.
func benchFixture(b *testing.B, c *gamma.Cluster) (*gamma.Relation, *gamma.Relation) {
	b.Helper()
	outer := wisconsin.Generate(10000, 1989)
	inner := wisconsin.Bprime(outer, 1000)
	s, err := gamma.Load(c, "A", outer, gamma.HashPart, tuple.Unique1)
	if err != nil {
		b.Fatal(err)
	}
	r, err := gamma.Load(c, "B", inner, gamma.HashPart, tuple.Unique1)
	if err != nil {
		b.Fatal(err)
	}
	return r, s
}

// BenchmarkJoin measures each algorithm end-to-end at half memory (the
// paper's most discriminating point).
func BenchmarkJoin(b *testing.B) {
	for _, alg := range []core.Algorithm{core.SortMerge, core.Simple, core.Grace, core.Hybrid} {
		b.Run(alg.String(), func(b *testing.B) {
			c := gamma.NewLocal(8, nil)
			r, s := benchFixture(b, c)
			var sim float64
			for i := 0; i < b.N; i++ {
				rep, err := core.Run(c, core.Spec{
					Alg: alg, R: r, S: s,
					RAttr: tuple.Unique1, SAttr: tuple.Unique1,
					MemRatio: 0.5, StoreResult: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Response.Seconds()
			}
			b.ReportMetric(sim, "sim-sec")
		})
	}
}

// BenchmarkDynHybrid runs the adaptive Hybrid at half memory with a 4x
// inner-size over-estimate under the degrade fault schedule (memory
// pressure seeding the build short, budget swings revoking and re-granting
// mid-build). Besides the response it reports the adaptation ledger —
// spills, resurrections, revoked pages — which is deterministic, so
// benchcheck pins it exactly like every other simulated metric. The
// cluster and fixture are rebuilt per iteration so every run consumes the
// fault schedule from the same starting coordinates.
func BenchmarkDynHybrid(b *testing.B) {
	var sim, spills, resurrections, revoked float64
	for i := 0; i < b.N; i++ {
		c := gamma.NewLocal(8, nil)
		c.EnableFaults(fault.Spec{Seed: 77, MemPressureRate: 0.5, BudgetSwingRate: 0.5})
		r, s := benchFixture(b, c)
		rep, err := core.Run(c, core.Spec{
			Alg: core.HybridDyn, R: r, S: s,
			RAttr: tuple.Unique1, SAttr: tuple.Unique1,
			MemRatio: 0.5, EstErrorFactor: 4, StoreResult: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		sim = rep.Response.Seconds()
		spills = float64(rep.SpillCount)
		resurrections = float64(rep.Resurrections)
		revoked = float64(rep.RevokedPages.Count())
	}
	b.ReportMetric(sim, "sim-sec")
	b.ReportMetric(spills, "spills")
	b.ReportMetric(resurrections, "resurrections")
	b.ReportMetric(revoked, "revoked-pages")
}

// BenchmarkAblationBucketAnalyzer compares Hybrid on the Appendix-A
// pathological configuration (2 disks, 4 diskless join nodes, 3 buckets)
// with and without the optimizer bucket analyzer. Without it, two join
// sites starve and the others overflow.
func BenchmarkAblationBucketAnalyzer(b *testing.B) {
	for _, skip := range []bool{false, true} {
		name := "with-analyzer"
		if skip {
			name = "without-analyzer"
		}
		b.Run(name, func(b *testing.B) {
			c := gamma.NewRemote(2, 4, nil)
			r, s := benchFixture(b, c)
			var sim float64
			var overflowed int64
			for i := 0; i < b.N; i++ {
				rep, err := core.Run(c, core.Spec{
					Alg: core.Hybrid, R: r, S: s,
					RAttr: tuple.Unique1, SAttr: tuple.Unique1,
					MemRatio: 1.0 / 3, ForceBuckets: 3,
					SkipAnalyzer: skip, StoreResult: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Response.Seconds()
				overflowed = rep.ROverflowed
			}
			b.ReportMetric(sim, "sim-sec")
			b.ReportMetric(float64(overflowed), "R-overflow-tuples")
		})
	}
}

// BenchmarkAblationFilterSize sweeps the packet size that bounds the shared
// bit-filter, showing the saturation effect of Section 4.2 (a bigger packet
// means a bigger, more selective filter).
func BenchmarkAblationFilterSize(b *testing.B) {
	for _, packet := range []int{512, 2048, 8192} {
		b.Run(map[int]string{512: "512B", 2048: "2KB", 8192: "8KB"}[packet], func(b *testing.B) {
			params := cost.DefaultParams()
			params.PacketBytes = packet
			c := gamma.NewLocal(8, cost.NewModel(params))
			r, s := benchFixture(b, c)
			var sim, dropped float64
			for i := 0; i < b.N; i++ {
				rep, err := core.Run(c, core.Spec{
					Alg: core.Hybrid, R: r, S: s,
					RAttr: tuple.Unique1, SAttr: tuple.Unique1,
					MemRatio: 1.0, BitFilter: true, StoreResult: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Response.Seconds()
				dropped = float64(rep.FilterDropped)
			}
			b.ReportMetric(sim, "sim-sec")
			b.ReportMetric(dropped, "S-dropped")
		})
	}
}

// BenchmarkAblationOverflowVsBucket is the Figure 7 tradeoff at a single
// intermediate ratio: optimistic single-bucket-with-overflow versus the
// pessimistic extra bucket.
func BenchmarkAblationOverflowVsBucket(b *testing.B) {
	for _, optimistic := range []bool{true, false} {
		name := "pessimistic-2-buckets"
		if optimistic {
			name = "optimistic-overflow"
		}
		b.Run(name, func(b *testing.B) {
			c := gamma.NewLocal(8, nil)
			r, s := benchFixture(b, c)
			var sim float64
			for i := 0; i < b.N; i++ {
				spec := core.Spec{
					Alg: core.Hybrid, R: r, S: s,
					RAttr: tuple.Unique1, SAttr: tuple.Unique1,
					MemRatio: 0.7, StoreResult: true,
				}
				if optimistic {
					spec.AllowOverflow = true
				} else {
					spec.ForceBuckets = 2
				}
				rep, err := core.Run(c, spec)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Response.Seconds()
			}
			b.ReportMetric(sim, "sim-sec")
		})
	}
}

// Extension benchmarks (paper future work, measured).
func BenchmarkExtFormingFilters(b *testing.B) { benchExperiment(b, "ext-formfilter") }
func BenchmarkExtBucketTuning(b *testing.B)   { benchExperiment(b, "ext-tuning") }
func BenchmarkExtMixedConfig(b *testing.B)    { benchExperiment(b, "ext-mixed") }
func BenchmarkExtUtilization(b *testing.B)    { benchExperiment(b, "ext-util") }
func BenchmarkExtJoinAselB(b *testing.B)      { benchExperiment(b, "ext-aselb") }

// BenchmarkSelect and BenchmarkAggregate cover the non-join operators.
func BenchmarkSelect(b *testing.B) {
	c := gamma.NewLocal(8, nil)
	tuples := wisconsin.Generate(10000, 1989)
	rel, err := gamma.Load(c, "A", tuples, gamma.HashPart, tuple.Unique1)
	if err != nil {
		b.Fatal(err)
	}
	var sim float64
	for i := 0; i < b.N; i++ {
		rep, _, err := core.RunSelect(c, core.SelectSpec{
			Rel:         rel,
			Pred:        pred.Range(tuple.Unique1, 0, 1000),
			StoreResult: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		sim = rep.Response.Seconds()
	}
	b.ReportMetric(sim, "sim-sec")
}

func BenchmarkAggregate(b *testing.B) {
	c := gamma.NewRemote(8, 8, nil)
	tuples := wisconsin.Generate(10000, 1989)
	rel, err := gamma.Load(c, "A", tuples, gamma.HashPart, tuple.Unique1)
	if err != nil {
		b.Fatal(err)
	}
	var sim float64
	for i := 0; i < b.N; i++ {
		rep, _, err := core.RunAggregate(c, core.AggSpec{
			Rel: rel, GroupAttr: tuple.OnePercent, AggAttr: tuple.Unique1, Fn: core.Avg,
		})
		if err != nil {
			b.Fatal(err)
		}
		sim = rep.Response.Seconds()
	}
	b.ReportMetric(sim, "sim-sec")
}

func BenchmarkExtSpeedup(b *testing.B) { benchExperiment(b, "ext-speedup") }

func BenchmarkExtGrowingRelations(b *testing.B) { benchExperiment(b, "ext-growing") }

func BenchmarkExtMultiuser(b *testing.B) { benchExperiment(b, "ext-multiuser") }

// BenchmarkMPLSweep runs the multi-query workload engine's multiprogramming
// sweep (12 mixed queries under each admission policy at MPL 1..8) and
// reports the final row's (shrink at MPL 8) throughput as the qps metric.
func BenchmarkMPLSweep(b *testing.B) {
	var qps float64
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchConfig())
		res, err := h.MPLSweep()
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		q, err := strconv.ParseFloat(last[2], 64)
		if err != nil {
			b.Fatal(err)
		}
		qps = q
	}
	b.ReportMetric(qps, "qps")
}
